(** The experiment runner: configuration × workload × heap factor →
    summarized metrics, with memoization (many figures share
    configurations) and multi-seed trials with 95% confidence intervals,
    mirroring the paper's 20-invocation methodology (Sec. 5).

    Trials are submitted through {!Holes_engine.Engine}: [params.jobs]
    worker domains execute them in parallel, each trial owning its VM,
    device and VMM outright, with the seed derived deterministically
    from the job spec ({!Holes_engine.Job.seed}) — so any [-j] produces
    bit-identical outcomes.  Figures that sweep a grid should call
    {!prefetch} with the whole grid first: it shards *all* trials of the
    grid across the pool at once, while a bare {!run} can only
    parallelize within one configuration's seed group. *)

open Holes_stdx
module Engine = Holes_engine.Engine
module Job = Holes_engine.Job
module Sink = Holes_engine.Sink
module Otrace = Holes_obs.Trace
module Ostats = Holes_obs.Stats

type params = {
  scale : float;  (** workload volume scale (1.0 = full) *)
  seeds : int;  (** trials per configuration *)
  jobs : int;  (** worker domains; <= 1 runs inline on the caller *)
}

let quick = { scale = 0.25; seeds = 2; jobs = 1 }
let full = { scale = 0.6; seeds = 5; jobs = 1 }

(** Whether [p] asks for paper-grade volume.  Structural on purpose: the
    CLI rebuilds the preset record to set [jobs], so physical equality
    with [full] would misclassify it. *)
let is_full (p : params) : bool = p.scale >= full.scale

type outcome = {
  profile : string;
  cfg : Holes.Config.t;
  completed : int;  (** trials that finished *)
  trials : int;
  time_ms : Stats.summary option;  (** over completed trials *)
  mean_full_pause_ms : float;
  max_full_pause_ms : float;
  mean_full_gcs : float;
  mean_nursery_gcs : float;
  mean_borrowed : float;  (** borrowed DRAM pages (lifetime) per trial *)
  mean_perfect_requests : float;
  mean_hole_skips : float;
  mean_bytes_copied : float;
  (* device-backend pipeline activity (all zero on the static backend) *)
  mean_device_writes : float;
  mean_device_failures : float;  (** wear-induced line failures per trial *)
  mean_upcalls : float;  (** OS → runtime failure up-calls per trial *)
  mean_reverse_translations : float;
  mean_swap_ins : float;
  mean_fbuf_peak : float;  (** peak failure-buffer occupancy *)
  mean_device_reads : float;
  mean_os_page_copies : float;  (** failure-unaware fallback resolutions *)
  mean_os_data_restores : float;  (** clustering re-backed the failing line *)
  mean_fbuf_stalls : float;  (** device stall events per trial *)
  mean_verify_passes : float;
      (** clean paranoid-verifier runs per trial (0 unless [Config.verify]) *)
  pause_hist : Ostats.hist;  (** full-GC pauses (ns) pooled over completed trials *)
}

(* memo table: one entry per (config, profile, params), shared across
   figures.  Guarded by [cache_mutex]: prefetch folds can land from the
   orchestrating domain while another grid is in flight, and a bare
   concurrent Hashtbl.replace from two domains is a silent race. *)
let cache : (string, outcome) Hashtbl.t = Hashtbl.create 256
let cache_mutex = Mutex.create ()

let with_cache (f : unit -> 'a) : 'a =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

(** Drop every memoized outcome (tests; speedup measurement reruns). *)
let clear_cache () : unit = with_cache (fun () -> Hashtbl.reset cache)

(* results sink: when set (bench/bin [--out]), every executed trial is
   streamed as one JSONL record.  Memoized groups run once, so each
   trial of a sweep appears exactly once. *)
let sink : Sink.t option ref = ref None

let set_sink (s : Sink.t option) : unit = sink := s
let current_sink () : Sink.t option = !sink

(* trace buffer: when set ([--trace FILE]), every executed trial runs
   under a tracer view whose pid is derived from the job spec — like the
   seed, scheduling-independent — so the merged trace is identical for
   any [-j].  Timestamps come from each trial's cost model (virtual
   nanoseconds), not the host clock. *)
let tracer : Otrace.t option ref = ref None

let set_tracer (t : Otrace.t option) : unit = tracer := t
let current_tracer () : Otrace.t option = !tracer

(* verifier override: when set ([--verify] in bench/bin), every trial
   runs with the paranoid heap verifier on regardless of per-config
   settings.  Changes no serialized result — only the non-serialized
   verify counters and wall-clock.  Set before trials start; worker
   domains read it but never write it. *)
let verify_all : bool ref = ref false

let set_verify (b : bool) : unit = verify_all := b

(* [Config.name] is lossy by design (it names result rows, not points of
   the configuration space), so the key spells out every axis the name
   omits — [defrag_occupancy] and the full device/arrival parameter set.
   Before this audit two configs differing only in, say, clustering or
   buffer capacity would alias one memo entry; fleet cells additionally
   encode their arrival/pool parameters in the profile name, so they can
   never alias a non-fleet cell. *)
let device_key (cfg : Holes.Config.t) : string =
  match cfg.Holes.Config.backend with
  | Holes.Config.Static -> "static"
  | Holes.Config.Device d ->
      (* the -hyb name tag carries epoch/ways already, but the key spells
         the policy out anyway: a hybrid cell must never be served from
         an untiered memo entry, whatever the name derivation does *)
      Printf.sprintf "dev:e%g:s%g:c%s:b%d:dr%d:wa%b:hy%s"
        d.Holes.Config.wear.Holes_pcm.Wear.mean_endurance
        d.Holes.Config.wear.Holes_pcm.Wear.sigma
        (match d.Holes.Config.clustering with None -> "-" | Some n -> string_of_int n)
        d.Holes.Config.buffer_capacity d.Holes.Config.dram_pages d.Holes.Config.wear_aware_pools
        (Holes_pcm.Hybrid.to_cli cfg.Holes.Config.hybrid)

let cache_key (cfg : Holes.Config.t) (profile : Holes_workload.Profile.t) (p : params) : string =
  (* [verify] changes no serialized result, but the verify_passes means
     must not be served from a verifier-off memo entry (or vice versa) *)
  Printf.sprintf "%s|h%.3f|d%b|o%.3f|n%b|v%b|%s|%s|s%.4f|n%d|seed%d" (Holes.Config.name cfg)
    cfg.Holes.Config.heap_factor cfg.Holes.Config.defrag cfg.Holes.Config.defrag_occupancy
    cfg.Holes.Config.nursery_copy
    (cfg.Holes.Config.verify || !verify_all)
    (device_key cfg) profile.Holes_workload.Profile.name p.scale p.seeds
    cfg.Holes.Config.seed

type raw_trial = {
  r_completed : bool;
  r_time : float;
  r_metrics : Holes.Metrics.t;
  r_borrowed : int;
  r_perfect_requests : int;
}

let run_trial ?(tracer = Otrace.null) ~(cfg : Holes.Config.t)
    ~(profile : Holes_workload.Profile.t) ~(scale : float) ~(seed : int) () : raw_trial =
  let cfg =
    {
      cfg with
      Holes.Config.seed;
      verify = cfg.Holes.Config.verify || !verify_all;
    }
  in
  let profile = Holes_workload.Profile.scaled profile scale in
  let vm =
    Holes.Vm.create ~cfg ~tracer ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) ()
  in
  let rng = Xrng.of_seed (seed lxor 0x5eed) in
  let res = Holes_workload.Generator.run ~rng vm profile in
  let acct = Holes_heap.Page_stock.accounting (Holes.Vm.stock vm) in
  {
    r_completed = res.Holes_workload.Generator.completed;
    r_time = res.Holes_workload.Generator.elapsed_ms;
    r_metrics = res.Holes_workload.Generator.metrics;
    r_borrowed = Holes_osal.Accounting.total_borrowed acct;
    r_perfect_requests = Holes_osal.Accounting.perfect_requests acct;
  }

(* the engine job body: spec → raw trial, seeded from the spec.  Under a
   tracer each trial is one trace "process": pid from the spec hash, a
   [trial] span on the engine lane bracketing the whole run. *)
let trial_of_spec (spec : Job.spec) ~(seed : int) : raw_trial =
  let run tracer =
    run_trial ~tracer ~cfg:spec.Job.cfg ~profile:spec.Job.profile ~scale:spec.Job.scale ~seed ()
  in
  match !tracer with
  | None -> run Otrace.null
  | Some tr ->
      let v = Otrace.view tr ~pid:(1 + (Job.seed spec land 0x3FFFFFFF)) in
      Otrace.name_process v (Job.label spec);
      Otrace.begin_span v ~tid:Otrace.tid_engine "trial";
      let r = run v in
      Otrace.end_span v ~tid:Otrace.tid_engine "trial" ~args:[ ("time_ms", r.r_time) ];
      r

(* JSONL payload of one trial: the *complete* metrics snapshot — every
   counter plus the pause/search/occupancy histogram summaries — not the
   hand-picked subset the records used to carry.  Downstream analysis
   should never need a rerun with different verbosity. *)
let sink_metrics (t : raw_trial) : (string * float) list =
  ("time_ms", t.r_time)
  :: ("borrowed", float_of_int t.r_borrowed)
  :: ("perfect_requests", float_of_int t.r_perfect_requests)
  :: Holes.Metrics.to_fields t.r_metrics

let sink_outcome (t : raw_trial) : string = if t.r_completed then "ok" else "oom"

(* Fold raw trials into the CI statistics the figures consume.  [trials]
   is the planned count; a crashed job (engine [Failed]) contributes to
   the denominator but has no metrics. *)
let outcome_of_trials ~(cfg : Holes.Config.t) ~(profile : Holes_workload.Profile.t)
    ~(trials : int) (raw : raw_trial list) : outcome =
  let done_ = List.filter (fun t -> t.r_completed) raw in
  let meanf f = match raw with [] -> 0.0 | _ -> Stats.mean (List.map f raw) in
  let pauses =
    List.concat_map (fun t -> t.r_metrics.Holes.Metrics.pauses_ns) done_
    |> List.map (fun ns -> ns /. 1.0e6)
  in
  {
    profile = profile.Holes_workload.Profile.name;
    cfg;
    completed = List.length done_;
    trials;
    time_ms =
      (match done_ with
      | [] -> None
      | _ -> Some (Stats.summarize (List.map (fun t -> t.r_time) done_)));
    mean_full_pause_ms = (match pauses with [] -> 0.0 | _ -> Stats.mean pauses);
    max_full_pause_ms = (match pauses with [] -> 0.0 | _ -> Stats.maximum pauses);
    mean_full_gcs = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.full_gcs);
    mean_nursery_gcs = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.nursery_gcs);
    mean_borrowed = meanf (fun t -> float_of_int t.r_borrowed);
    mean_perfect_requests = meanf (fun t -> float_of_int t.r_perfect_requests);
    mean_hole_skips = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.hole_skips);
    mean_bytes_copied = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.bytes_copied);
    mean_device_writes = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.device_writes);
    mean_device_failures =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.device_line_failures);
    mean_upcalls = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.os_upcalls);
    mean_reverse_translations =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.reverse_translations);
    mean_swap_ins = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.swap_ins);
    mean_fbuf_peak =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.fbuf_peak_occupancy);
    mean_device_reads = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.device_reads);
    mean_os_page_copies =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.os_page_copies);
    mean_os_data_restores =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.os_data_restores);
    mean_fbuf_stalls =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.fbuf_stall_events);
    mean_verify_passes =
      meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.verify_passes);
    pause_hist =
      Ostats.merged (List.map (fun t -> t.r_metrics.Holes.Metrics.pause_hist) done_);
  }

(* run a planned spec array through the engine and fold each contiguous
   [seeds]-sized slice (one (cfg, profile) pair) into the cache *)
let run_specs_into_cache ~(params : params)
    ~(pairs : (Holes.Config.t * Holes_workload.Profile.t) list) : unit =
  let specs = Engine.plan_pairs ~pairs ~scale:params.scale ~seeds:params.seeds in
  let results =
    Engine.run ~jobs:params.jobs ?sink:!sink ~metrics:sink_metrics ~outcome_label:sink_outcome
      ~f:trial_of_spec specs
  in
  List.iteri
    (fun gi (cfg, profile) ->
      let raw =
        List.init params.seeds (fun i ->
            match results.((gi * params.seeds) + i).Engine.outcome with
            | Holes_engine.Pool.Done t -> Some t
            | Holes_engine.Pool.Failed _ -> None)
        |> List.filter_map Fun.id
      in
      let o = outcome_of_trials ~cfg ~profile ~trials:params.seeds raw in
      with_cache (fun () -> Hashtbl.replace cache (cache_key cfg profile params) o))
    pairs

(** Populate the memo cache for a whole grid in one engine run: every
    trial of every not-yet-cached (cfg × profile) pair is sharded across
    the pool at once.  Figure drivers call this with their full grid so
    [-j] parallelism spans the grid, not one seed group. *)
let prefetch ?(params = quick) ~(cfgs : Holes.Config.t list)
    ~(profiles : Holes_workload.Profile.t list) () : unit =
  let seen = Hashtbl.create 64 in
  let pending =
    List.concat_map (fun cfg -> List.map (fun p -> (cfg, p)) profiles) cfgs
    |> List.filter (fun (cfg, p) ->
           let key = cache_key cfg p params in
           (not (Hashtbl.mem seen key))
           && begin
                Hashtbl.add seen key ();
                not (with_cache (fun () -> Hashtbl.mem cache key))
              end)
  in
  if pending <> [] then run_specs_into_cache ~params ~pairs:pending

(** Run (or fetch from cache) all trials of [cfg] × [profile]. *)
let run ?(params = quick) ~(cfg : Holes.Config.t) ~(profile : Holes_workload.Profile.t) () :
    outcome =
  let key = cache_key cfg profile params in
  match with_cache (fun () -> Hashtbl.find_opt cache key) with
  | Some o -> o
  | None ->
      run_specs_into_cache ~params ~pairs:[ (cfg, profile) ];
      with_cache (fun () ->
          match Hashtbl.find_opt cache key with Some o -> o | None -> assert false)

(** Mean time of a completed outcome, or None if any trial failed (a DNF
    point, dropped from aggregate curves as in the paper). *)
let time_if_all_completed (o : outcome) : float option =
  if o.completed = o.trials then Option.map (fun s -> s.Stats.mean) o.time_ms else None

(** Geometric-mean normalized time of [cfgf cfg_base] over [profiles],
    each benchmark normalized to its own [base] outcome.  None when any
    benchmark DNFs (curve termination). *)
let geomean_normalized ?(params = quick) ~(cfg : Holes.Config.t) ~(base : Holes.Config.t)
    ~(profiles : Holes_workload.Profile.t list) () : float option =
  let ratios =
    List.map
      (fun p ->
        let o = run ~params ~cfg ~profile:p () in
        let b = run ~params ~cfg:base ~profile:p () in
        match (time_if_all_completed o, time_if_all_completed b) with
        | Some t, Some tb when tb > 0.0 -> Some (t /. tb)
        | _ -> None)
      profiles
  in
  if List.exists (fun r -> r = None) ratios then None
  else Some (Stats.geomean (List.map Option.get ratios))
