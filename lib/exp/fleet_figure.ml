(** Serving under wear-out: request tail latency versus fleet age, per
    wear-leveling policy.

    Each row runs one {!Holes_fleet.Sim} fleet — tenant VMs multiplexed
    over shared aging PCM devices, open-loop MMPP arrivals, periodic
    failure storms — and reports the merged request-latency tail next to
    the wear telemetry.  The operating point (low endurance, bursty
    arrivals, heavy storms) is tuned so devices age visibly *within* the
    run: the per-epoch p99 split shows the latency cliff forming as the
    fleet wears out, and the cliff moves when the device pipeline levels
    wear ([start-gap], [random-remap], [decoder-swap]) or when the OS
    page allocator does ([none + wa], the wear-aware pools flag).

    The figure's claim mirrors Sec. 7.2 at fleet scale: leveling defers
    the end-of-run latency cliff (later epochs stay nearer the young
    fleet's p99) but buys it with remap/copy traffic, while the
    failure-aware runtime alone degrades gracefully — requests slow and
    tenants are evicted, but goodput never collapses to zero.

    One engine job per device shard, so each row is bit-identical at any
    [-j]; rows run sequentially and stream per-device records to the
    current sink. *)

open Holes_stdx
module Cfg = Holes.Config
module Wl = Holes_pcm.Wear_level
module Fleet_sim = Holes_fleet.Sim
module Arrivals = Holes_fleet.Arrivals
module Report = Holes_fleet.Report
module Stats = Holes_obs.Stats

let psi = 64

(** Work budget of the incremental-collection row: large enough that a
    cycle finishes within a request burst, small enough that every slice
    stays well under the pause SLO ({!pause_slo_ms}). *)
let inc_budget = 256

(** Pause-time SLO for the incremental row, milliseconds.  CI fails the
    figure artifact when the row's worst recorded stall exceeds this by
    more than 15%. *)
let pause_slo_ms = 1.0

(** Rows: the device-pipeline policies, OS-level leveling (wear-aware
    pools) composed with an unleveled pipeline, and the unleveled
    pipeline with incremental collection (bounded GC slices instead of
    stop-the-world pauses). *)
let rows : (string * Wl.policy option * bool * int) list =
  [
    ("none", None, false, 0);
    ("start-gap", Some (Wl.Start_gap { psi }), false, 0);
    ("random-remap", Some (Wl.Random_remap { psi }), false, 0);
    ("decoder-swap", Some (Wl.Decoder_swap { psi }), false, 0);
    ("none + wa", None, true, 0);
    ("none + inc", None, false, inc_budget);
  ]

(** The aging operating point: endurance low enough that storm traffic
    retires lines mid-run, bursty arrivals so queues form behind GC and
    retirement pauses.  Scaled by tenant/device count only — the
    per-device aging rate (storm writes per line) must match between
    quick and full runs, so both keep the same tenants-per-device ratio
    and the same storm schedule. *)
let fleet_params ~(tenants : int) ~(devices : int) ~(policy : Wl.policy option)
    ~(wear_aware : bool) ~(gc_slice : int) : Fleet_sim.params =
  let d = Cfg.default_device in
  let wear = { d.Cfg.wear with Holes_pcm.Wear.mean_endurance = 25.0 } in
  let cfg =
    {
      Fleet_sim.default.Fleet_sim.cfg with
      Cfg.backend = Cfg.Device { d with Cfg.wear; wear_aware_pools = wear_aware };
      wear_level = policy;
      gc_slice;
    }
  in
  {
    Fleet_sim.default with
    Fleet_sim.tenants;
    devices;
    arrival = Arrivals.Mmpp { rate = 150.0; burst = 6.0; dwell_ms = 40.0 };
    duration_ms = 1500.0;
    epochs = 4;
    slo_ms = 10.0;
    storm_every_ms = 50.0;
    storm_writes = 16384;
    cfg;
  }

(** Tail latency versus fleet age under each leveling policy.  The
    [p99 young->old] column is the cliff: first-epoch versus last-epoch
    p99 (requests split by arrival time).  [goodput] is SLO-meeting
    throughput; [wear CoV] is the mean within-device coefficient of
    variation (the [none + wa] row shows the pools flag flattening
    it). *)
let table ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create
      ~title:
        "Serving under wear-out — request tail latency vs fleet age (device backend, \
         MMPP arrivals, failure storms, low endurance)"
      ~headers:
        [
          "policy"; "thr rps"; "goodput"; "p50 ms"; "p99 ms"; "p999 ms";
          "p99 young->old"; "gc p99 ms"; "gc max ms"; "wear CoV"; "evict"; "dead";
        ]
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        ]
      ()
  in
  (* full quadruples the fleet at the same tenants-per-device ratio and
     storm schedule, so the aging rate matches and the tails sharpen *)
  let tenants, devices = if Runner.is_full params then (16, 8) else (4, 2) in
  List.iter
    (fun (name, policy, wear_aware, gc_slice) ->
      let p = fleet_params ~tenants ~devices ~policy ~wear_aware ~gc_slice in
      let r =
        Fleet_sim.run ~jobs:params.Runner.jobs ?sink:(Runner.current_sink ()) p
      in
      let epoch_p99 (h : Stats.hist) = Stats.quantile h 0.99 /. 1e6 in
      let young = epoch_p99 r.Report.epoch.(0) in
      let old_ = epoch_p99 r.Report.epoch.(Array.length r.Report.epoch - 1) in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" r.Report.throughput_rps;
          Printf.sprintf "%.0f" r.Report.goodput_rps;
          Printf.sprintf "%.3f" r.Report.p50_ms;
          Printf.sprintf "%.3f" r.Report.p99_ms;
          Printf.sprintf "%.3f" r.Report.p999_ms;
          Printf.sprintf "%.2f->%.2f" young old_;
          Printf.sprintf "%.3f" r.Report.gc_pause_p99_ms;
          Printf.sprintf "%.3f" r.Report.gc_pause_max_ms;
          Printf.sprintf "%.4f" r.Report.wear_cov_mean;
          string_of_int r.Report.evictions;
          string_of_int r.Report.dead_tenants;
        ])
    rows;
  t
