(** Wear-lifetime experiment (device backend).

    The paper's central premise is that memories wear out gradually and
    the runtime should keep executing as holes appear (Secs. 1–3).  This
    experiment exercises that end to end on the device backend: one VM
    runs the same workload round after round on the *same* worn device,
    every heap line store charged through [Device.write].  Lines fail as
    their lognormal endurance budgets exhaust; each failure travels the
    device → failure buffer → interrupt → VMM up-call chain and is
    retired by the runtime.  The measure is how many rounds the heap
    survives before the live set no longer fits the remaining good
    lines, as a function of mean line endurance.

    Between rounds the whole live set is killed and a full collection
    runs, so survival reflects wear capacity loss rather than live-set
    leakage across rounds. *)

open Holes_stdx
module Cfg = Holes.Config

let device_cfg ~(endurance : float) : Cfg.t =
  let d = Cfg.default_device in
  let wear = { d.Cfg.wear with Holes_pcm.Wear.mean_endurance = endurance } in
  { Figures.base_six with Cfg.backend = Cfg.Device { d with Cfg.wear } }

exception Worn_out

(** Run [profile] repeatedly on one device-backed VM until it cannot
    complete a round (or [max_rounds] is reached).  Returns the number
    of completed rounds and the VM's final metrics (device counters
    synced). *)
let rounds_until_wearout ~(cfg : Cfg.t) ~(profile : Holes_workload.Profile.t)
    ~(scale : float) ~(max_rounds : int) : int * Holes.Metrics.t =
  let profile = Holes_workload.Profile.scaled profile scale in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
  let rounds = ref 0 in
  (try
     while !rounds < max_rounds do
       let rng = Xrng.of_seed (cfg.Cfg.seed + (31 * !rounds)) in
       let res = Holes_workload.Generator.run ~rng vm profile in
       if not res.Holes_workload.Generator.completed then raise Worn_out;
       incr rounds;
       (* drain the live set so the next round starts from an empty heap *)
       let objs = Holes.Vm.objects vm in
       Holes_heap.Object_table.iter_slots objs (fun id ->
           if Holes_heap.Object_table.is_alive objs id then Holes.Vm.kill vm id);
       Holes.Vm.collect vm ~full:true
     done
   with Worn_out | Holes.Vm.Out_of_memory -> ());
  Holes.Vm.sync_backend_stats vm;
  (!rounds, Holes.Vm.metrics vm)

(** Rounds survived and pipeline activity across a mean-endurance sweep:
    the lifetime the cooperative pipeline buys as endurance shrinks.
    Each endurance point is one engine job — the whole sweep shards
    across [params.jobs] domains, each point owning its device and VM
    outright.  A point's result depends only on its config, so the table
    is identical at any [-j]. *)
let table ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create
      ~title:
        "Wear lifetime - workload rounds survived on one worn device (S-IX L256, device \
         backend)"
      ~headers:[ "mean endurance"; "rounds"; "device writes"; "wear failures"; "up-calls" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] ()
  in
  let profile = Holes_workload.Dacapo.pmd in
  let max_rounds = if Runner.is_full params then 12 else 6 in
  let endurances = [ 200.0; 50.0; 20.0; 10.0; 5.0 ] in
  let specs =
    Array.of_list
      (List.map
         (fun endurance ->
           {
             Holes_engine.Job.cfg = device_cfg ~endurance;
             profile;
             scale = params.Runner.scale /. 2.0;
             seed_index = 0;
           })
         endurances)
  in
  let results =
    Holes_engine.Engine.run ~jobs:params.Runner.jobs
      ?sink:(Runner.current_sink ())
      ~metrics:(fun (rounds, m) ->
        [
          ("rounds", float_of_int rounds);
          ("device_writes", float_of_int m.Holes.Metrics.device_writes);
          ("device_line_failures", float_of_int m.Holes.Metrics.device_line_failures);
          ("os_upcalls", float_of_int m.Holes.Metrics.os_upcalls);
        ])
      ~f:(fun spec ~seed:_ ->
        (* wear-out is a property of the aging device, not of trial
           noise: the round RNG derives from cfg.seed so the point is a
           pure function of its spec *)
        rounds_until_wearout ~cfg:spec.Holes_engine.Job.cfg
          ~profile:spec.Holes_engine.Job.profile ~scale:spec.Holes_engine.Job.scale
          ~max_rounds)
      specs
  in
  List.iteri
    (fun i endurance ->
      match results.(i).Holes_engine.Engine.outcome with
      | Holes_engine.Pool.Done (rounds, m) ->
          Table.add_row t
            [
              Printf.sprintf "%.0f" endurance;
              (if rounds >= max_rounds then Printf.sprintf ">=%d" rounds
               else string_of_int rounds);
              string_of_int m.Holes.Metrics.device_writes;
              string_of_int m.Holes.Metrics.device_line_failures;
              string_of_int m.Holes.Metrics.os_upcalls;
            ]
      | Holes_engine.Pool.Failed { exn; _ } ->
          Table.add_row t [ Printf.sprintf "%.0f" endurance; "error: " ^ exn; "-"; "-"; "-" ])
    endurances;
  t
